#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace dtr {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<int> hits(100, 0);
  parallel_for(&pool, hits.size(), [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, NullPoolRunsSequentially) {
  std::vector<int> hits(64, 0);
  parallel_for(nullptr, hits.size(), [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, hits.size(), [&](std::size_t, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(&pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  pool.run(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(&pool, hits.size(), [&](std::size_t, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, OversubscriptionBeyondHardwareConcurrency) {
  // Far more workers than cores must still complete and visit every index.
  ThreadPool pool(32);
  EXPECT_EQ(pool.num_workers(), 32u);
  std::vector<std::atomic<int>> hits(10000);
  for (int round = 0; round < 3; ++round) {
    parallel_for(&pool, hits.size(), [&](std::size_t, std::size_t i) { ++hits[i]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [&](std::size_t, std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::vector<std::atomic<int>> hits(100);
  parallel_for(&pool, hits.size(), [&](std::size_t, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, LowestWorkerExceptionWins) {
  ThreadPool pool(4);
  // Every chunk throws its own error; the caller must deterministically see
  // worker 0's (index-0 chunk) exception.
  try {
    pool.run(4, [](std::size_t worker, std::size_t, std::size_t) {
      throw std::runtime_error("worker " + std::to_string(worker));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 0");
  }
}

TEST(ThreadPoolTest, NestedRunFallsBackToInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(&pool, 4, [&](std::size_t, std::size_t outer) {
    // Nested use of the same pool must not deadlock.
    pool.run(16, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[outer * 16 + i];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StaticPartitionIsDeterministic) {
  // chunk bounds are a pure function of (n, workers, w): contiguous, ordered,
  // covering [0, n).
  for (std::size_t n : {0u, 1u, 7u, 64u, 1001u}) {
    for (std::size_t workers : {1u, 2u, 3u, 8u}) {
      std::size_t prev_end = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = ThreadPool::chunk_begin(n, workers, w);
        const std::size_t end = ThreadPool::chunk_begin(n, workers, w + 1);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(begin, end);
        prev_end = end;
      }
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolTest, ChunkedParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t chunk_size : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                 std::size_t{50}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(101);
    parallel_for(
        &pool, hits.size(), [&](std::size_t, std::size_t i) { ++hits[i]; },
        chunk_size);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk_size=" << chunk_size;
  }
}

TEST(ThreadPoolTest, ChunkedAssignmentIsCyclicAndDeterministic) {
  ThreadPool pool(3);
  const std::size_t chunk_size = 4;
  const std::size_t n = 26;  // deliberately not a multiple of chunk or workers
  std::vector<int> owner(n, -1);
  parallel_for(
      &pool, n, [&](std::size_t worker, std::size_t i) { owner[i] = static_cast<int>(worker); },
      chunk_size);
  // Block b of 4 indices belongs to worker b % 3 — a pure function of
  // (n, W, chunk_size), the determinism contract.
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(owner[i], static_cast<int>((i / chunk_size) % 3)) << "i=" << i;
}

TEST(ThreadPoolTest, ChunkedFallsBackToSequentialWithoutPool) {
  std::vector<int> hits(20, 0);
  parallel_for(
      nullptr, hits.size(),
      [&](std::size_t worker, std::size_t i) {
        EXPECT_EQ(worker, 0u);
        ++hits[i];
      },
      3);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, RejectsNegativeThreadCount) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
}

}  // namespace
}  // namespace dtr
