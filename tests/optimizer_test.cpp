#include <gtest/gtest.h>

#include <algorithm>

#include "core/metrics.h"
#include "core/optimizer.h"
#include "test_helpers.h"

namespace dtr {
namespace {

OptimizerConfig smoke_config(std::uint64_t seed) {
  OptimizerConfig c = default_optimizer_config(Effort::kSmoke, seed);
  c.wmax = 60;
  return c;
}

struct OptimizedFixture {
  test::TestInstance inst;
  std::unique_ptr<Evaluator> evaluator;
  OptimizeResult result;
};

OptimizedFixture run_smoke(int nodes = 10, double degree = 4.0, std::uint64_t seed = 3,
                           double util = 0.55) {
  OptimizedFixture f;
  f.inst = test::make_test_instance(nodes, degree, seed, util);
  f.evaluator = std::make_unique<Evaluator>(f.inst.graph, f.inst.traffic, f.inst.params);
  RobustOptimizer optimizer(*f.evaluator, smoke_config(seed));
  f.result = optimizer.optimize();
  return f;
}

TEST(OptimizerTest, PhaseOneImprovesOnWarmStart) {
  const auto f = run_smoke();
  const WeightSetting warm = make_warm_start(f.inst.graph, 60);
  const CostPair warm_cost = f.evaluator->evaluate(warm).cost();
  const LexicographicOrder ord;
  EXPECT_FALSE(ord.less(warm_cost, f.result.regular_cost));
}

TEST(OptimizerTest, RobustSatisfiesConstraints) {
  const auto f = run_smoke();
  const LexicographicOrder ord;
  // Eq. (5): no Lambda degradation under normal conditions.
  EXPECT_TRUE(
      ord.values_equal(f.result.robust_normal_cost.lambda, f.result.regular_cost.lambda));
  // Eq. (6): Phi within (1+chi).
  EXPECT_LE(f.result.robust_normal_cost.phi,
            (1.0 + 0.2) * f.result.regular_cost.phi + 1e-6);
}

TEST(OptimizerTest, RobustNoWorseOnCriticalSet) {
  const auto f = run_smoke();
  std::vector<FailureScenario> critical;
  for (LinkId l : f.result.critical) critical.push_back(FailureScenario::link(l));
  const SweepResult regular_fail = f.evaluator->sweep(f.result.regular, critical);
  const LexicographicOrder ord;
  // Phase 2 starts from the regular setting, so its Kfail can only improve.
  EXPECT_FALSE(ord.less(regular_fail.cost(), f.result.robust_kfail));
}

TEST(OptimizerTest, ReportedKfailMatchesRecomputation) {
  const auto f = run_smoke();
  std::vector<FailureScenario> critical;
  for (LinkId l : f.result.critical) critical.push_back(FailureScenario::link(l));
  const SweepResult recomputed = f.evaluator->sweep(f.result.robust, critical);
  EXPECT_NEAR(recomputed.lambda, f.result.robust_kfail.lambda, 1e-6);
  EXPECT_NEAR(recomputed.phi, f.result.robust_kfail.phi, 1e-6);
}

TEST(OptimizerTest, CriticalSetSizeMatchesFraction) {
  const auto f = run_smoke();
  RobustOptimizer optimizer(*f.evaluator, smoke_config(3));
  const std::size_t expected = optimizer.critical_target_size();
  EXPECT_LE(f.result.critical.size(), expected);
  EXPECT_GE(f.result.critical.size(), 1u);
  // Links are valid and unique.
  EXPECT_TRUE(std::is_sorted(f.result.critical.begin(), f.result.critical.end()));
  for (LinkId l : f.result.critical) EXPECT_LT(l, f.inst.graph.num_links());
}

TEST(OptimizerTest, CriticalCountOverridesFraction) {
  auto inst = test::make_test_instance(10, 4.0, 5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = smoke_config(5);
  config.critical_count = 3;
  RobustOptimizer opt(ev, config);
  EXPECT_EQ(opt.critical_target_size(), 3u);
  config.critical_count = 0;
  config.critical_fraction = 0.25;
  RobustOptimizer opt2(ev, config);
  EXPECT_EQ(opt2.critical_target_size(),
            static_cast<std::size_t>(std::lround(0.25 * inst.graph.num_links())));
}

TEST(OptimizerTest, DeterministicForSeed) {
  const auto a = run_smoke(9, 4.0, 11);
  const auto b = run_smoke(9, 4.0, 11);
  EXPECT_TRUE(a.result.regular == b.result.regular);
  EXPECT_TRUE(a.result.robust == b.result.robust);
  EXPECT_EQ(a.result.critical, b.result.critical);
  EXPECT_DOUBLE_EQ(a.result.robust_kfail.lambda, b.result.robust_kfail.lambda);
}

TEST(OptimizerTest, SamplesWereCollected) {
  const auto f = run_smoke();
  EXPECT_GT(f.result.phase1a_samples + f.result.phase1b_samples, 0u);
  EXPECT_EQ(f.result.estimates.rho_lambda.size(), f.inst.graph.num_links());
  EXPECT_GT(f.result.phase1_evaluations, 0);
  EXPECT_GT(f.result.phase2_evaluations, 0);
}

TEST(OptimizerTest, FullSearchSelectorUsesAllLinks) {
  auto inst = test::make_test_instance(8, 4.0, 7);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = smoke_config(7);
  config.selector = SelectorKind::kFullSearch;
  RobustOptimizer opt(ev, config);
  const OptimizeResult r = opt.optimize();
  EXPECT_EQ(r.critical.size(), inst.graph.num_links());
}

TEST(OptimizerTest, BaselineSelectorsProduceValidSets) {
  auto inst = test::make_test_instance(8, 4.0, 9);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  for (SelectorKind kind : {SelectorKind::kRandom, SelectorKind::kLoad,
                            SelectorKind::kThresholdCrossing}) {
    OptimizerConfig config = smoke_config(9);
    config.selector = kind;
    config.critical_fraction = 0.2;
    RobustOptimizer opt(ev, config);
    const OptimizeResult r = opt.optimize();
    EXPECT_GE(r.critical.size(), 1u) << to_string(kind);
    EXPECT_LE(r.critical.size(), inst.graph.num_links()) << to_string(kind);
  }
}

TEST(OptimizerTest, BothSamplingModesCollectSamples) {
  for (SamplingMode mode : {SamplingMode::kEmulatedWeights, SamplingMode::kExactFailure}) {
    auto inst = test::make_test_instance(8, 4.0, 13);
    const Evaluator ev(inst.graph, inst.traffic, inst.params);
    OptimizerConfig config = smoke_config(13);
    config.sampling_mode = mode;
    RobustOptimizer opt(ev, config);
    const OptimizeResult r = opt.optimize();
    EXPECT_GT(r.phase1a_samples + r.phase1b_samples, 0u) << to_string(mode);
    EXPECT_GE(r.critical.size(), 1u) << to_string(mode);
  }
}

TEST(OptimizerTest, RandomInitWorksToo) {
  auto inst = test::make_test_instance(8, 4.0, 15);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = smoke_config(15);
  config.warm_start = false;
  RobustOptimizer opt(ev, config);
  const OptimizeResult r = opt.optimize();
  EXPECT_GE(r.phase1_evaluations, 1);
}

TEST(OptimizerTest, ConfigValidation) {
  auto inst = test::make_test_instance(8, 4.0, 17);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig bad = smoke_config(17);
  bad.critical_fraction = 0.0;
  EXPECT_THROW(RobustOptimizer(ev, bad), std::invalid_argument);
  bad = smoke_config(17);
  bad.chi = -0.5;
  EXPECT_THROW(RobustOptimizer(ev, bad), std::invalid_argument);
}

TEST(OptimizerTest, FailureProbabilitiesSteerCriticalSelection) {
  // Give one link overwhelming failure probability: with the probabilistic
  // extension it must enter Ec (its expected regret dominates) as long as it
  // has any criticality signal at all.
  auto inst = test::make_test_instance(10, 4.0, 31, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = smoke_config(31);
  config.critical_count = 2;
  RobustOptimizer baseline(ev, config);
  const OptimizeResult base = baseline.optimize();

  // Pick a link outside the baseline Ec that has nonzero criticality.
  LinkId boosted = kInvalidLink;
  for (LinkId l = 0; l < inst.graph.num_links(); ++l) {
    const bool in_ec = std::find(base.critical.begin(), base.critical.end(), l) !=
                       base.critical.end();
    if (!in_ec && base.estimates.rho_lambda[l] + base.estimates.rho_phi[l] > 0.0) {
      boosted = l;
      break;
    }
  }
  if (boosted == kInvalidLink) GTEST_SKIP() << "no boostable link at this seed";

  std::vector<double> probs(inst.graph.num_links(), 1e-6);
  probs[boosted] = 1.0;
  config.objective = objective_from_link_probabilities(inst.graph, probs);
  RobustOptimizer weighted(ev, config);
  const OptimizeResult r = weighted.optimize();
  EXPECT_NE(std::find(r.critical.begin(), r.critical.end(), boosted), r.critical.end());
}

TEST(OptimizerTest, FailureProbabilitySizeValidated) {
  auto inst = test::make_test_instance(8, 4.0, 33);
  const std::vector<double> wrong_size = {0.5, 0.5};
  EXPECT_THROW(objective_from_link_probabilities(inst.graph, wrong_size),
               std::invalid_argument);
  // An objective referencing links beyond the graph is rejected at optimize().
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  OptimizerConfig config = smoke_config(33);
  HardeningObjective bad;
  bad.set.add(FailureScenario::link(inst.graph.num_links() + 7), 1.0, "out-of-range");
  config.objective = bad;
  RobustOptimizer opt(ev, config);
  EXPECT_THROW(opt.optimize(), std::invalid_argument);
}

TEST(OptimizerTest, ToStringHelpers) {
  EXPECT_EQ(to_string(SamplingMode::kEmulatedWeights), "emulated-weights");
  EXPECT_EQ(to_string(SamplingMode::kExactFailure), "exact-failure");
  EXPECT_EQ(to_string(SelectorKind::kDistributionGap), "distribution-gap");
  EXPECT_EQ(to_string(SelectorKind::kFullSearch), "full-search");
}

TEST(OptimizerTest, DefaultConfigsScaleWithEffort) {
  const auto smoke = default_optimizer_config(Effort::kSmoke, 1);
  const auto quick = default_optimizer_config(Effort::kQuick, 1);
  const auto full = default_optimizer_config(Effort::kFull, 1);
  EXPECT_LT(smoke.phase1.diversification_interval, quick.phase1.diversification_interval);
  EXPECT_LT(quick.phase1.diversification_interval, full.phase1.diversification_interval);
  // Paper values at full effort.
  EXPECT_EQ(full.phase1.diversification_interval, 100);
  EXPECT_EQ(full.phase1.stall_diversifications, 20);
  EXPECT_EQ(full.phase2.diversification_interval, 30);
  EXPECT_EQ(full.phase2.stall_diversifications, 10);
  EXPECT_EQ(full.criticality.tau, 30);
}

// The headline integration claim: on a diverse topology, the robust routing
// suffers (weakly) fewer SLA violations across all single link failures than
// the regular routing, at bounded normal-condition throughput cost.
TEST(OptimizerIntegrationTest, RobustBeatsRegularAcrossFailures) {
  double robust_beta_sum = 0.0, regular_beta_sum = 0.0;
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    auto inst = test::make_test_instance(12, 5.0, seed, 0.65);
    const Evaluator ev(inst.graph, inst.traffic, inst.params);
    OptimizerConfig config = default_optimizer_config(Effort::kSmoke, seed);
    RobustOptimizer opt(ev, config);
    const OptimizeResult r = opt.optimize();
    const auto scenarios = all_link_failures(inst.graph);
    const FailureProfile regular = profile_failures(ev, r.regular, scenarios);
    const FailureProfile robust = profile_failures(ev, r.robust, scenarios);
    robust_beta_sum += robust.beta();
    regular_beta_sum += regular.beta();
  }
  EXPECT_LE(robust_beta_sum, regular_beta_sum + 1e-9);
}

}  // namespace
}  // namespace dtr
