#include <gtest/gtest.h>

#include "core/metrics.h"
#include "test_helpers.h"

namespace dtr {
namespace {

TEST(FailureProfileTest, BetaIsMeanViolations) {
  FailureProfile p;
  p.violations = {0.0, 2.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(p.beta(), 4.0);
}

TEST(FailureProfileTest, TopTailPicksWorst) {
  FailureProfile p;
  for (int i = 1; i <= 10; ++i) p.violations.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.beta_top(0.10), 10.0);
  EXPECT_DOUBLE_EQ(p.beta_top(0.20), 9.5);
}

TEST(FailureProfileTest, SumsAndNormalization) {
  FailureProfile p;
  p.lambda = {1.0, 2.0};
  p.phi = {10.0, 30.0};
  p.phi_uncap = 20.0;
  EXPECT_DOUBLE_EQ(p.lambda_sum(), 3.0);
  EXPECT_DOUBLE_EQ(p.phi_sum(), 40.0);
  const auto norm = p.normalized_phi();
  EXPECT_DOUBLE_EQ(norm[0], 0.5);
  EXPECT_DOUBLE_EQ(norm[1], 1.5);
}

TEST(ProfileFailuresTest, MatchesDirectEvaluation) {
  const test::TestInstance inst = test::make_test_instance(9, 4.0, 2, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const auto scenarios = all_link_failures(inst.graph);
  const FailureProfile profile = profile_failures(ev, w, scenarios);
  ASSERT_EQ(profile.violations.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const EvalResult r = ev.evaluate(w, scenarios[i]);
    EXPECT_DOUBLE_EQ(profile.lambda[i], r.lambda);
    EXPECT_DOUBLE_EQ(profile.phi[i], r.phi);
    EXPECT_DOUBLE_EQ(profile.violations[i], r.sla_violations);
  }
}

TEST(BetaPhiPercentTest, SymmetricAbsoluteDifference) {
  FailureProfile a, b;
  a.phi = {110.0};
  b.phi = {100.0};
  EXPECT_DOUBLE_EQ(beta_phi_percent(a, b), 10.0);
  a.phi = {90.0};
  EXPECT_DOUBLE_EQ(beta_phi_percent(a, b), 10.0);
  b.phi = {0.0};
  EXPECT_DOUBLE_EQ(beta_phi_percent(a, b), 0.0);  // guarded
}

TEST(CompareLoadsTest, CountsIncreasedLinks) {
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 6, 0.5);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const EvalResult normal = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  const EvalResult failed = ev.evaluate(w, FailureScenario::link(0), EvalDetail::kFull);
  const LoadRedistribution lr = compare_loads(inst.graph, normal, failed);
  // Rerouted traffic must land somewhere.
  EXPECT_GT(lr.links_with_increase, 0);
  EXPECT_GT(lr.average_increase, 0.0);
  EXPECT_GT(lr.max_utilization, 0.0);
}

TEST(CompareLoadsTest, IdenticalResultsNoIncrease) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const EvalResult normal = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  const LoadRedistribution lr = compare_loads(inst.graph, normal, normal);
  EXPECT_EQ(lr.links_with_increase, 0);
  EXPECT_DOUBLE_EQ(lr.average_increase, 0.0);
}

TEST(CompareLoadsTest, RequiresFullDetail) {
  const test::TestInstance inst = test::make_test_instance(8, 4.0, 6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const EvalResult cheap = ev.evaluate(w);
  EXPECT_THROW(compare_loads(inst.graph, cheap, cheap), std::invalid_argument);
}

TEST(UtilizationStatsTest, AverageAndMax) {
  EvalResult r;
  r.arc_utilization = {0.2, 0.4, 0.9};
  const UtilizationStats s = utilization_stats(r);
  EXPECT_NEAR(s.average, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.max, 0.9);
  EvalResult empty;
  EXPECT_THROW(utilization_stats(empty), std::invalid_argument);
}

TEST(MaxPathUtilizationTest, SinglePathEqualsBottleneck) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 10.0, 1.0);  // bottleneck
  ClassedTraffic traffic{TrafficMatrix(3), TrafficMatrix(3)};
  traffic.delay.set(0, 2, 5.0);
  const Evaluator ev(g, traffic, EvalParams{});
  const WeightSetting w(g.num_links());
  // Utilizations: 5/100 and 5/10; the one delay pair sees max 0.5.
  EXPECT_NEAR(average_max_path_utilization(ev, w), 0.5, 1e-9);
}

TEST(MaxPathUtilizationTest, BoundedByGlobalMax) {
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 7, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w(inst.graph.num_links());
  const EvalResult full = ev.evaluate(w, FailureScenario::none(), EvalDetail::kFull);
  const UtilizationStats stats = utilization_stats(full);
  const double avg_max = average_max_path_utilization(ev, w);
  EXPECT_LE(avg_max, stats.max + 1e-9);
  EXPECT_GT(avg_max, 0.0);
}

TEST(SortedDescTest, Sorts) {
  const auto out = sorted_desc(std::vector<double>{1.0, 5.0, 3.0});
  EXPECT_EQ(out, (std::vector<double>{5.0, 3.0, 1.0}));
}

TEST(UnavoidableViolationsTest, CountsPropagationLimitedPairs) {
  // Diamond with one fast path (2ms+2ms) and one slow (30ms+30ms); theta=25.
  Graph g(4);
  g.add_link(0, 1, 100.0, 2.0);
  g.add_link(1, 3, 100.0, 2.0);
  g.add_link(0, 2, 100.0, 30.0);
  g.add_link(2, 3, 100.0, 30.0);
  ClassedTraffic traffic{TrafficMatrix(4), TrafficMatrix(4)};
  traffic.delay.set(0, 3, 1.0);
  const Evaluator ev(g, traffic, EvalParams{});
  // Normal: fast path exists -> avoidable.
  EXPECT_EQ(unavoidable_violations(ev, FailureScenario::none()), 0);
  // Fail the fast path's first hop: only the 60ms detour remains.
  EXPECT_EQ(unavoidable_violations(ev, FailureScenario::link(0)), 1);
}

TEST(UnavoidableViolationsTest, DisconnectionIsUnavoidable) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  g.add_link(1, 2, 100.0, 1.0);
  ClassedTraffic traffic{TrafficMatrix(3), TrafficMatrix(3)};
  traffic.delay.set(0, 2, 1.0);
  const Evaluator ev(g, traffic, EvalParams{});
  EXPECT_EQ(unavoidable_violations(ev, FailureScenario::link(1)), 1);
}

TEST(UnavoidableViolationsTest, LowerBoundsAnyRoutingProfile) {
  const test::TestInstance inst = test::make_test_instance(10, 4.0, 11, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const auto scenarios = all_link_failures(inst.graph);
  const auto lower = unavoidable_violation_profile(ev, scenarios);
  const WeightSetting w(inst.graph.num_links());
  const FailureProfile profile = profile_failures(ev, w, scenarios);
  ASSERT_EQ(lower.size(), profile.violations.size());
  for (std::size_t i = 0; i < lower.size(); ++i)
    EXPECT_LE(lower[i], profile.violations[i]) << "scenario " << i;
}

TEST(UnavoidableViolationsTest, NodeFailureSkipsItsTraffic) {
  const Graph g = test::make_ring(4);
  ClassedTraffic traffic{TrafficMatrix(4), TrafficMatrix(4)};
  traffic.delay.set(1, 3, 1.0);  // sourced at failing node -> not counted
  EvalParams params;
  params.sla.theta_ms = 0.5;  // everything violates if counted
  const Evaluator ev(g, traffic, params);
  EXPECT_EQ(unavoidable_violations(ev, FailureScenario::node(1)), 0);
}

}  // namespace
}  // namespace dtr
