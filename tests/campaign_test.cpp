#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/campaign.h"
#include "experiments/results.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dtr::experiments {
namespace {

/// A tiny campaign mirroring the two bench shapes the artifact contract
/// covers: a table2-style cell (repeats + unavoidable floor) and a
/// fig6-style cell (fluctuated-TM stress block with per-index series).
Campaign tiny_campaign() {
  Campaign campaign;
  campaign.name = "test";
  campaign.effort = Effort::kSmoke;
  campaign.seed = 5;

  CampaignCell table_cell;
  table_cell.id = "rand8";
  table_cell.spec.kind = TopologyKind::kRand;
  table_cell.spec.nodes = 8;
  table_cell.spec.degree = 4.0;
  table_cell.spec.seed = 5;
  table_cell.repeats = 2;
  table_cell.unavoidable_floor = true;
  campaign.cells.push_back(table_cell);

  CampaignCell stress_cell;
  stress_cell.id = "rand8-stress";
  stress_cell.spec = table_cell.spec;
  stress_cell.repeats = 1;
  stress_cell.fluctuation.model = FluctuationSpec::Model::kGaussian;
  stress_cell.fluctuation.trials = 3;
  campaign.cells.push_back(stress_cell);

  return campaign;
}

TEST(CampaignTest, JsonBytesIdenticalAcrossExecutionShapes) {
  const Campaign campaign = tiny_campaign();
  // One worker sequential, eight cell-parallel shards, and sequential cells
  // with an eight-way inner engine: identical CampaignResult, identical
  // artifact bytes.
  const CampaignResult sequential = run_campaign(campaign, {1, 1});
  const CampaignResult cell_parallel = run_campaign(campaign, {8, 1});
  const CampaignResult inner_parallel = run_campaign(campaign, {1, 8});

  for (const CampaignResult* r : {&sequential, &cell_parallel, &inner_parallel}) {
    ASSERT_EQ(r->cells.size(), campaign.cells.size());
    EXPECT_EQ(r->cells[0].id, "rand8");
    EXPECT_EQ(r->cells[1].id, "rand8-stress");
    EXPECT_TRUE(r->cells[0].error.empty()) << r->cells[0].error;
    EXPECT_TRUE(r->cells[1].error.empty()) << r->cells[1].error;
  }

  const std::string a = campaign_json(sequential);
  const std::string b = campaign_json(cell_parallel);
  const std::string c = campaign_json(inner_parallel);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find("\"schema\": \"dtr.campaign.v1\""), std::string::npos);
  // The fig6-style series made it into the artifact.
  EXPECT_NE(a.find("\"pert_violations_r_mean\""), std::string::npos);
}

TEST(CampaignTest, FluctuationSharedBasePathMatchesReferenceBytes) {
  // evaluate_fluctuations rides the cross-trial shared-labels path when the
  // incremental engine is on (one SPF solve per routing x failure, reused by
  // every perturbed trial) and the per-trial reference path when it is off.
  // Both must produce byte-identical stress series, for any pool shape.
  WorkloadSpec spec;
  spec.kind = TopologyKind::kRand;
  spec.nodes = 10;
  spec.degree = 4.0;
  spec.seed = 11;
  const Workload w = make_workload(spec);

  Rng rng(3);
  std::vector<WeightSetting> routings(2, WeightSetting(w.graph.num_links()));
  for (WeightSetting& r : routings) randomize_weights(r, 20, rng);
  const std::vector<LinkId> top = {0, 1, 2, 3};

  FluctuationSpec fluct;
  fluct.model = FluctuationSpec::Model::kGaussian;
  fluct.trials = 4;

  EvaluatorConfig shared_cfg;     // incremental on: shared-labels path
  EvaluatorConfig reference_cfg;  // incremental off: per-trial evaluators
  reference_cfg.incremental = false;

  ThreadPool pool(4);
  const std::vector<StressSeries> reference =
      evaluate_fluctuations(w, routings, top, fluct, 77, nullptr, reference_cfg);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const std::vector<StressSeries> shared =
        evaluate_fluctuations(w, routings, top, fluct, 77, p, shared_cfg);
    ASSERT_EQ(shared.size(), reference.size());
    const auto bytes_equal = [](const std::vector<double>& x,
                                const std::vector<double>& y) {
      return x.size() == y.size() &&
             (x.empty() ||
              std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
    };
    for (std::size_t r = 0; r < shared.size(); ++r) {
      EXPECT_TRUE(bytes_equal(shared[r].mean_violations, reference[r].mean_violations));
      EXPECT_TRUE(bytes_equal(shared[r].std_violations, reference[r].std_violations));
      EXPECT_TRUE(bytes_equal(shared[r].mean_phi, reference[r].mean_phi));
      EXPECT_TRUE(bytes_equal(shared[r].std_phi, reference[r].std_phi));
    }
  }
}

TEST(CampaignTest, StandardMetricsArePresentAndSane) {
  Campaign campaign = tiny_campaign();
  campaign.cells.resize(1);
  const CampaignResult result = run_campaign(campaign, {1, 1});
  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& cell = result.cells[0];
  ASSERT_TRUE(cell.error.empty()) << cell.error;
  ASSERT_EQ(cell.reps.size(), 2u);
  for (const MetricRow& rep : cell.reps) {
    EXPECT_EQ(rep.get("nodes"), 8.0);
    EXPECT_GT(rep.get("links"), 0.0);
    EXPECT_GE(rep.get("beta_r", -1.0), 0.0);
    EXPECT_GE(rep.get("beta_top10_nr", -1.0), rep.get("beta_nr") - 1e-9);
    EXPECT_GE(rep.get("beta_floor", -1.0), 0.0);
  }
  // Rep seeds follow the stride contract.
  EXPECT_EQ(cell.reps[0].seed, 5u);
  EXPECT_EQ(cell.reps[1].seed, 5u + 101u);
  const Aggregate beta = aggregate_metric(cell, "beta_r");
  EXPECT_EQ(beta.count, 2u);
}

TEST(CampaignTest, ThrowingCellIsCapturedWithoutAbortingTheCampaign) {
  Campaign campaign = tiny_campaign();
  CampaignCell bomb;
  bomb.id = "bomb";
  bomb.repeats = 1;
  bomb.body = [](const CampaignCell&, Effort, std::uint64_t,
                 const CellContext&) -> MetricRow {
    throw std::runtime_error("cell exploded");
  };
  // Insert in the middle so healthy cells run on both sides of the failure.
  campaign.cells.insert(campaign.cells.begin() + 1, bomb);

  const CampaignResult result = run_campaign(campaign, {4, 1});
  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_TRUE(result.cells[0].error.empty());
  EXPECT_EQ(result.cells[1].id, "bomb");
  EXPECT_EQ(result.cells[1].error, "cell exploded");
  EXPECT_TRUE(result.cells[1].reps.empty());
  EXPECT_TRUE(result.cells[2].error.empty());
  EXPECT_FALSE(result.cells[2].reps.empty());
  // The artifact records the failure as a string, not a crash.
  EXPECT_NE(campaign_json(result).find("\"error\": \"cell exploded\""),
            std::string::npos);
}

TEST(CampaignTest, CustomBodyAggregates) {
  Campaign campaign;
  campaign.effort = Effort::kSmoke;
  CampaignCell cell;
  cell.id = "synthetic";
  cell.repeats = 3;
  cell.spec.seed = 10;
  cell.seed_stride = 1;
  cell.body = [](const CampaignCell&, Effort, std::uint64_t seed,
                 const CellContext&) {
    MetricRow row;
    row.seed = seed;
    row.values = {{"m", static_cast<double>(seed)}};
    return row;
  };
  campaign.cells.push_back(cell);

  const CampaignResult result = run_campaign(campaign, {1, 1});
  const Aggregate agg = aggregate_metric(result.cells[0], "m");
  EXPECT_EQ(agg.count, 3u);
  EXPECT_DOUBLE_EQ(agg.mean, 11.0);  // seeds 10, 11, 12
  EXPECT_DOUBLE_EQ(agg.stddev, 1.0);
  const auto all = aggregate_metrics(result.cells[0]);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "m");
}

TEST(CampaignTest, NestedParallelismGuard) {
  Campaign campaign;
  CampaignCell cell;
  cell.id = "probe";
  cell.repeats = 1;
  cell.body = [](const CampaignCell&, Effort, std::uint64_t, const CellContext& ctx) {
    MetricRow row;
    row.values = {{"inner_threads", static_cast<double>(ctx.inner_threads)},
                  {"has_pool", ctx.inner_pool != nullptr ? 1.0 : 0.0}};
    return row;
  };
  campaign.cells.push_back(cell);
  campaign.cells.push_back(cell);
  campaign.cells[1].id = "probe2";

  // Cells in parallel => inner engine forced sequential.
  const CampaignResult parallel_cells = run_campaign(campaign, {2, 8});
  EXPECT_EQ(parallel_cells.cells[0].reps[0].get("inner_threads"), 1.0);
  EXPECT_EQ(parallel_cells.cells[0].reps[0].get("has_pool"), 0.0);
  EXPECT_EQ(parallel_cells.cell_workers, 2);

  // Sequential cells => the inner pool engages.
  const CampaignResult inner = run_campaign(campaign, {1, 4});
  EXPECT_EQ(inner.cells[0].reps[0].get("inner_threads"), 4.0);
  EXPECT_EQ(inner.cells[0].reps[0].get("has_pool"), 1.0);

  // Worker count never exceeds the cell count.
  const CampaignResult clamped = run_campaign(campaign, {16, 1});
  EXPECT_EQ(clamped.cell_workers, 2);

  // Cell-level parallelism the clamp can't use flows to the inner engine.
  Campaign single;
  single.cells.push_back(campaign.cells[0]);
  const CampaignResult redirected = run_campaign(single, {4, 1});
  EXPECT_EQ(redirected.cell_workers, 1);
  EXPECT_EQ(redirected.cells[0].reps[0].get("inner_threads"), 4.0);

  // An explicit fully-sequential request stays sequential.
  const CampaignResult sequential = run_campaign(single, {1, 1});
  EXPECT_EQ(sequential.cells[0].reps[0].get("inner_threads"), 1.0);
}

TEST(CampaignTest, SpecParserBuildsCells) {
  std::istringstream in(R"(# demo spec
name = demo
effort = smoke
seed = 9

[cell]
id = a
topology = near
nodes = 12
degree = 3.5
repeats = 4
floor = 1

[cell]
topology = rand
max_util = 0.9
seed = 77
fluctuation = hotspot
trials = 8
direction = upload
)");
  const Campaign campaign = parse_campaign_spec(in);
  EXPECT_EQ(campaign.name, "demo");
  EXPECT_EQ(campaign.effort, Effort::kSmoke);
  EXPECT_EQ(campaign.seed, 9u);
  ASSERT_EQ(campaign.cells.size(), 2u);

  const CampaignCell& a = campaign.cells[0];
  EXPECT_EQ(a.id, "a");
  EXPECT_EQ(a.spec.kind, TopologyKind::kNear);
  EXPECT_EQ(a.spec.nodes, 12);
  EXPECT_DOUBLE_EQ(a.spec.degree, 3.5);
  EXPECT_EQ(a.spec.seed, 9u);  // inherited from the campaign seed
  EXPECT_EQ(a.repeats, 4);
  EXPECT_TRUE(a.unavoidable_floor);

  const CampaignCell& b = campaign.cells[1];
  EXPECT_EQ(b.id, "RandTopo[30]/1");  // defaulted id ('#' would read as comment)
  EXPECT_EQ(b.spec.util.kind, UtilizationTarget::Kind::kMax);
  EXPECT_EQ(b.spec.seed, 77u);
  EXPECT_EQ(b.fluctuation.model, FluctuationSpec::Model::kHotSpot);
  EXPECT_EQ(b.fluctuation.trials, 8);
  EXPECT_EQ(b.fluctuation.hot_spot.direction, HotSpotParams::Direction::kUpload);
}

TEST(CampaignTest, SpecParserRejectsMalformedInput) {
  const auto expect_error = [](const char* text, const char* needle) {
    std::istringstream in(text);
    try {
      parse_campaign_spec(in);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("bogus_key = 1\n", "unknown campaign key");
  expect_error("[cell]\nbogus = 1\n", "unknown cell key");
  expect_error("[cell]\nnodes = twelve\n", "bad integer");
  expect_error("[cell]\nnodes = 12x7\n", "bad integer");  // no silent truncation
  expect_error("[cell]\ndegree = 0.1.5\n", "bad number");
  expect_error("effort = warp\n", "unknown value for key 'effort'");
  expect_error("no equals here\n", "expected key = value");
  expect_error("seed = -1\n", "bad seed");  // stoull would wrap mod 2^64
  expect_error("[cell]\nrepeats = 0\n", "repeats must be >= 1");
  // Line numbers are reported.
  expect_error("name = x\n\nbogus_key = 1\n", "line 3");
}

TEST(CampaignTest, ParseWorkerCount) {
  EXPECT_EQ(parse_worker_count("0"), 0);
  EXPECT_EQ(parse_worker_count("8"), 8);
  EXPECT_EQ(parse_worker_count("4096"), 4096);
  EXPECT_FALSE(parse_worker_count("4097").has_value());
  EXPECT_FALSE(parse_worker_count("-1").has_value());
  EXPECT_FALSE(parse_worker_count("eight").has_value());
  EXPECT_FALSE(parse_worker_count("8x").has_value());
  EXPECT_FALSE(parse_worker_count("").has_value());
}

TEST(CampaignTest, FilterCells) {
  Campaign campaign = tiny_campaign();
  filter_cells(campaign, "stress");
  ASSERT_EQ(campaign.cells.size(), 1u);
  EXPECT_EQ(campaign.cells[0].id, "rand8-stress");
  filter_cells(campaign, "");
  EXPECT_EQ(campaign.cells.size(), 1u);  // empty filter keeps everything
  filter_cells(campaign, "zzz");
  EXPECT_TRUE(campaign.cells.empty());
}

TEST(CampaignTest, EmptyCampaignProducesEmptyResult) {
  Campaign campaign;
  campaign.name = "empty";
  const CampaignResult result = run_campaign(campaign, {0, 1});
  EXPECT_TRUE(result.cells.empty());
  EXPECT_NE(campaign_json(result).find("\"cells\": []"), std::string::npos);
}

TEST(CampaignTest, WorstFailureLinksIsADeterministicTotalOrder) {
  FailureProfile profile;
  profile.violations = {1.0, 5.0, 5.0, 0.0, 3.0};
  profile.phi = {10.0, 2.0, 7.0, 1.0, 4.0};
  const std::vector<LinkId> top = worst_failure_links(profile, 0.4);
  // 5-violation links first (phi breaks the tie), then the 3-violation one.
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 1u);
  // At least two stressed failures even for tiny fractions.
  EXPECT_EQ(worst_failure_links(profile, 0.01).size(), 2u);
  EXPECT_TRUE(worst_failure_links({}, 0.1).empty());
}

}  // namespace
}  // namespace dtr::experiments
