#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "graph/spf.h"
#include "graph/topology.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace dtr {
namespace {

std::vector<double> unit_costs(const Graph& g) {
  return std::vector<double>(g.num_arcs(), 1.0);
}

TEST(SpfTest, DiamondDistances) {
  const Graph g = test::make_diamond();
  std::vector<double> dist;
  shortest_distances_to(g, 3, unit_costs(g), {}, dist);
  EXPECT_DOUBLE_EQ(dist[3], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[0], 2.0);
}

TEST(SpfTest, ForwardAndReverseAgreeOnSymmetricCosts) {
  const Graph g = test::make_ring_with_chords(8);
  const auto costs = unit_costs(g);
  std::vector<double> to_t, from_t;
  shortest_distances_to(g, 5, costs, {}, to_t);
  shortest_distances_from(g, 5, costs, {}, from_t);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_DOUBLE_EQ(to_t[u], from_t[u]);
}

TEST(SpfTest, RespectsAliveMask) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  // Kill link 0-1 (both arcs of link 0).
  for (ArcId a : g.link_arcs(0)) alive[a] = 0;
  std::vector<double> dist;
  shortest_distances_to(g, 3, unit_costs(g), alive, dist);
  EXPECT_DOUBLE_EQ(dist[0], 2.0);  // still via 2
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
}

TEST(SpfTest, UnreachableIsInfinity) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  std::vector<double> dist;
  shortest_distances_to(g, 0, unit_costs(g), {}, dist);
  EXPECT_EQ(dist[2], kInfDist);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
}

TEST(SpfTest, AsymmetricCostsUseArcDirection) {
  Graph g(2);
  g.add_link(0, 1, 100.0, 1.0);  // arcs 0 (0->1) and 1 (1->0)
  std::vector<double> costs{5.0, 9.0};
  std::vector<double> dist;
  shortest_distances_to(g, 1, costs, {}, dist);
  EXPECT_DOUBLE_EQ(dist[0], 5.0);
  shortest_distances_to(g, 0, costs, {}, dist);
  EXPECT_DOUBLE_EQ(dist[1], 9.0);
}

TEST(SpfTest, InputValidation) {
  const Graph g = test::make_diamond();
  std::vector<double> dist;
  std::vector<double> short_costs(2, 1.0);
  EXPECT_THROW(shortest_distances_to(g, 0, short_costs, {}, dist), std::invalid_argument);
  EXPECT_THROW(shortest_distances_to(g, 99, unit_costs(g), {}, dist), std::out_of_range);
  std::vector<std::uint8_t> bad_mask(3, 1);
  EXPECT_THROW(shortest_distances_to(g, 0, unit_costs(g), bad_mask, dist),
               std::invalid_argument);
}

// Property: Dijkstra equals Floyd–Warshall on random weighted graphs.
TEST(SpfTest, MatchesFloydWarshallReference) {
  Rng rng(123);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = make_rand_topo({12, 4.0, 500.0, static_cast<std::uint64_t>(trial + 1)});
    std::vector<double> costs(g.num_arcs());
    for (double& c : costs) c = rng.uniform_int(1, 50);

    // Floyd–Warshall over arcs.
    const std::size_t n = g.num_nodes();
    std::vector<std::vector<double>> fw(n, std::vector<double>(n, kInfDist));
    for (std::size_t i = 0; i < n; ++i) fw[i][i] = 0.0;
    for (ArcId a = 0; a < g.num_arcs(); ++a)
      fw[g.arc(a).src][g.arc(a).dst] = std::min(fw[g.arc(a).src][g.arc(a).dst], costs[a]);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if (fw[i][k] + fw[k][j] < fw[i][j]) fw[i][j] = fw[i][k] + fw[k][j];

    const auto d = all_pairs_distances_to(g, costs);
    for (NodeId t = 0; t < n; ++t)
      for (NodeId u = 0; u < n; ++u)
        EXPECT_DOUBLE_EQ(d[t][u], fw[u][t]) << "trial " << trial;
  }
}

TEST(SpfTest, HopDistances) {
  const Graph g = test::make_diamond();
  std::vector<int> hops;
  hop_distances_from(g, 0, {}, hops);
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], 1);
  EXPECT_EQ(hops[3], 2);
}

TEST(SpfTest, HopDistancesUnreachable) {
  Graph g(3);
  g.add_link(0, 1, 100.0, 1.0);
  std::vector<int> hops;
  hop_distances_from(g, 0, {}, hops);
  EXPECT_EQ(hops[2], -1);
}

TEST(SpfTest, HopDistancesWithMask) {
  const Graph g = test::make_diamond();
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  for (ArcId a : g.link_arcs(0)) alive[a] = 0;  // no 0-1
  for (ArcId a : g.link_arcs(1)) alive[a] = 0;  // no 0-2
  std::vector<int> hops;
  hop_distances_from(g, 0, alive, hops);
  EXPECT_EQ(hops[3], -1);
}

TEST(SpfTest, PropagationDiameterOfRing) {
  // Ring of 6 with 1ms links: farthest pair is 3 hops = 3ms.
  const Graph g = test::make_ring(6);
  EXPECT_DOUBLE_EQ(propagation_diameter_ms(g), 3.0);
}

TEST(SpfTest, PropagationDiameterDegenerate) {
  Graph g(1);
  EXPECT_DOUBLE_EQ(propagation_diameter_ms(g), 0.0);
}

// ---------------------------------------------------------------------------
// delta_spf_remove_arcs: the incremental update must reproduce a from-scratch
// Dijkstra bit for bit, for every destination and every removed link.
// ---------------------------------------------------------------------------

std::vector<double> weight_costs(const Graph& g, int wmax, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> costs(g.num_arcs());
  // Both directions of a link share the weight, like WeightSetting expansion.
  std::vector<double> link_weight(g.num_links());
  for (double& w : link_weight) w = static_cast<double>(rng.uniform_int(1, wmax));
  for (ArcId a = 0; a < g.num_arcs(); ++a) costs[a] = link_weight[g.arc(a).link];
  return costs;
}

void expect_delta_matches_full(const Graph& g, std::span<const double> costs) {
  DeltaSpfScratch scratch;
  std::vector<double> base, delta, full;
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  std::vector<ArcId> removed;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    removed.assign(g.link_arcs(l).begin(), g.link_arcs(l).end());
    for (ArcId a : removed) alive[a] = 0;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      shortest_distances_to(g, t, costs, {}, base);
      delta = base;
      const std::ptrdiff_t touched = delta_spf_remove_arcs(
          g, costs, alive, removed, delta, g.num_nodes(), scratch);
      ASSERT_GE(touched, 0);
      shortest_distances_to(g, t, costs, alive, full);
      ASSERT_EQ(delta, full) << "link " << l << " dest " << t;
    }
    for (ArcId a : removed) alive[a] = 1;
  }
}

TEST(DeltaSpfTest, MatchesFullRecomputeOnRandomTopologies) {
  for (const std::uint64_t seed : {1ull, 5ull, 23ull}) {
    const Graph g = make_rand_topo({14, 4.0, 500.0, seed});
    expect_delta_matches_full(g, weight_costs(g, 20, seed + 100));
  }
}

TEST(DeltaSpfTest, MatchesFullRecomputeWithDisconnection) {
  // A path graph: every link is a bridge, so removals cut nodes off and the
  // delta update must drive the severed side to infinity.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 100.0, 1.0);
  expect_delta_matches_full(g, weight_costs(g, 7, 3));
}

TEST(DeltaSpfTest, MatchesFullRecomputeOnLinkPairs) {
  const Graph g = make_rand_topo({12, 4.0, 500.0, 9});
  const std::vector<double> costs = weight_costs(g, 15, 42);
  DeltaSpfScratch scratch;
  std::vector<double> base, delta, full;
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  std::vector<ArcId> removed;
  for (LinkId l1 = 0; l1 < g.num_links(); l1 += 3) {
    for (LinkId l2 = l1 + 1; l2 < g.num_links(); l2 += 5) {
      removed.assign(g.link_arcs(l1).begin(), g.link_arcs(l1).end());
      removed.insert(removed.end(), g.link_arcs(l2).begin(), g.link_arcs(l2).end());
      for (ArcId a : removed) alive[a] = 0;
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        shortest_distances_to(g, t, costs, {}, base);
        delta = base;
        ASSERT_GE(delta_spf_remove_arcs(g, costs, alive, removed, delta,
                                        g.num_nodes(), scratch),
                  0);
        shortest_distances_to(g, t, costs, alive, full);
        ASSERT_EQ(delta, full) << "links " << l1 << "+" << l2 << " dest " << t;
      }
      for (ArcId a : removed) alive[a] = 1;
    }
  }
}

TEST(DeltaSpfTest, NoRemovalIsANoOp) {
  const Graph g = test::make_ring_with_chords(10);
  const std::vector<double> costs = weight_costs(g, 9, 2);
  DeltaSpfScratch scratch;
  std::vector<double> dist, expect;
  shortest_distances_to(g, 4, costs, {}, dist);
  expect = dist;
  EXPECT_EQ(delta_spf_remove_arcs(g, costs, {}, {}, dist, g.num_nodes(), scratch), 0);
  EXPECT_EQ(dist, expect);
}

TEST(DeltaSpfTest, AffectedCapAbortsWithDistUntouched) {
  // Path graph, destination at one end, cut the first link: every other node
  // is affected, so any cap below n-1 must abort and leave dist unchanged.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 100.0, 1.0);
  const std::vector<double> costs(g.num_arcs(), 1.0);
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  for (ArcId a : g.link_arcs(0)) alive[a] = 0;
  const std::vector<ArcId> removed(g.link_arcs(0).begin(), g.link_arcs(0).end());

  DeltaSpfScratch scratch;
  std::vector<double> base, dist;
  // Toward destination 0, removing link 0 cuts nodes 1..5 off: 5 affected.
  shortest_distances_to(g, 0, costs, {}, base);
  dist = base;
  EXPECT_EQ(delta_spf_remove_arcs(g, costs, alive, removed, dist, 2, scratch), -1);
  EXPECT_EQ(dist, base);
  dist = base;
  EXPECT_EQ(delta_spf_remove_arcs(g, costs, alive, removed, dist, 5, scratch), 5);
}

// ---------------------------------------------------------------------------
// delta_spf_update_arcs: generalizes removal to arbitrary cost changes; the
// same bit-for-bit contract against a from-scratch Dijkstra, for increases,
// decreases, removals-as-masks, ties, no-ops and the abort path.
// ---------------------------------------------------------------------------

/// Byte-compares the delta update against a full Dijkstra for every
/// destination when link `l`'s weight changes from its value in `costs` to
/// `new_weight`.
void expect_update_matches_full(const Graph& g, std::span<const double> costs,
                                LinkId l, double new_weight) {
  std::vector<double> new_costs(costs.begin(), costs.end());
  std::vector<ArcCostDelta> changes;
  for (ArcId a : g.link_arcs(l)) {
    changes.push_back({a, costs[a]});
    new_costs[a] = new_weight;
  }
  DeltaSpfScratch scratch;
  std::vector<double> base, delta, full;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    shortest_distances_to(g, t, costs, {}, base);
    delta = base;
    ASSERT_GE(delta_spf_update_arcs(g, new_costs, {}, changes, delta, g.num_nodes(),
                                    scratch),
              0);
    shortest_distances_to(g, t, new_costs, {}, full);
    ASSERT_EQ(delta, full) << "link " << l << " -> " << new_weight << " dest " << t;
  }
}

TEST(DeltaSpfUpdateTest, CostDecreaseCreatesNewShortestPaths) {
  // Dropping any link to weight 1 pulls shortest paths through it: the
  // improvement front must propagate exactly like a fresh Dijkstra.
  for (const std::uint64_t seed : {4ull, 11ull, 29ull}) {
    const Graph g = make_rand_topo({14, 4.0, 500.0, seed});
    const std::vector<double> costs = weight_costs(g, 20, seed + 7);
    for (LinkId l = 0; l < g.num_links(); ++l)
      expect_update_matches_full(g, costs, l, 1.0);
  }
}

TEST(DeltaSpfUpdateTest, CostIncreaseRedirectsPaths) {
  for (const std::uint64_t seed : {6ull, 17ull}) {
    const Graph g = make_rand_topo({14, 4.0, 500.0, seed});
    const std::vector<double> costs = weight_costs(g, 20, seed + 3);
    for (LinkId l = 0; l < g.num_links(); ++l)
      expect_update_matches_full(g, costs, l, 75.0);
  }
}

TEST(DeltaSpfUpdateTest, IncreaseToDeadArcDisconnectsDestination) {
  // Path graph: treating a bridge as removed (dead in the alive mask, its old
  // cost in the change list) must drive the severed side to infinity.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 100.0, 1.0);
  const std::vector<double> costs = weight_costs(g, 7, 13);
  std::vector<std::uint8_t> alive(g.num_arcs(), 1);
  std::vector<ArcCostDelta> changes;
  for (ArcId a : g.link_arcs(2)) {  // bridge between {0,1,2} and {3,4,5}
    alive[a] = 0;
    changes.push_back({a, costs[a]});
  }
  DeltaSpfScratch scratch;
  std::vector<double> base, delta, full;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    shortest_distances_to(g, t, costs, {}, base);
    delta = base;
    ASSERT_GE(
        delta_spf_update_arcs(g, costs, alive, changes, delta, g.num_nodes(), scratch),
        0);
    shortest_distances_to(g, t, costs, alive, full);
    ASSERT_EQ(delta, full) << "dest " << t;
    // The far side really is unreachable now.
    if (t >= 3) {
      EXPECT_EQ(delta[0], kInfDist);
    }
  }
}

TEST(DeltaSpfUpdateTest, EqualCostTieChurnKeepsLabelsBitIdentical) {
  // Diamond 0-1-3 / 0-2-3, all weight 1: both two-hop paths tie. Breaking
  // the tie (increase one side) or re-creating it (decrease back) never
  // changes any label — the update must report zero affected nodes and
  // leave every byte alone, matching the full recompute.
  const Graph g = test::make_diamond();
  std::vector<double> even(g.num_arcs(), 1.0);

  // Increase off the tie: link 0 (0-1) from 1 to 2; labels to dest 3 keep
  // their values (0 still reaches 3 at cost 2 via node 2).
  {
    std::vector<double> new_costs = even;
    std::vector<ArcCostDelta> changes;
    for (ArcId a : g.link_arcs(0)) {
      changes.push_back({a, 1.0});
      new_costs[a] = 2.0;
    }
    DeltaSpfScratch scratch;
    std::vector<double> base, delta, full;
    shortest_distances_to(g, 3, even, {}, base);
    delta = base;
    EXPECT_EQ(delta_spf_update_arcs(g, new_costs, {}, changes, delta, g.num_nodes(),
                                    scratch),
              0);
    shortest_distances_to(g, 3, new_costs, {}, full);
    ASSERT_EQ(delta, full);
    ASSERT_EQ(delta, base);
  }

  // Decrease onto the tie: starting from the broken-tie costs, lower the
  // link back to 1 — the improved arc only matches (never beats) the other
  // path, so again zero affected nodes.
  {
    std::vector<double> old_costs = even;
    for (ArcId a : g.link_arcs(0)) old_costs[a] = 2.0;
    std::vector<ArcCostDelta> changes;
    for (ArcId a : g.link_arcs(0)) changes.push_back({a, 2.0});
    DeltaSpfScratch scratch;
    std::vector<double> base, delta, full;
    shortest_distances_to(g, 3, old_costs, {}, base);
    delta = base;
    EXPECT_EQ(delta_spf_update_arcs(g, even, {}, changes, delta, g.num_nodes(), scratch),
              0);
    shortest_distances_to(g, 3, even, {}, full);
    ASSERT_EQ(delta, full);
    ASSERT_EQ(delta, base);
  }
}

TEST(DeltaSpfUpdateTest, NoOpDeltaReturnsZero) {
  const Graph g = test::make_ring_with_chords(10);
  const std::vector<double> costs = weight_costs(g, 9, 21);
  DeltaSpfScratch scratch;
  std::vector<double> dist, expect;
  shortest_distances_to(g, 6, costs, {}, dist);
  expect = dist;
  // Empty change list.
  EXPECT_EQ(delta_spf_update_arcs(g, costs, {}, {}, dist, g.num_nodes(), scratch), 0);
  EXPECT_EQ(dist, expect);
  // Changes whose old cost equals the new cost.
  std::vector<ArcCostDelta> noop;
  for (ArcId a : g.link_arcs(3)) noop.push_back({a, costs[a]});
  EXPECT_EQ(delta_spf_update_arcs(g, costs, {}, noop, dist, g.num_nodes(), scratch), 0);
  EXPECT_EQ(dist, expect);
}

TEST(DeltaSpfUpdateTest, AbortThresholdRestoresDistOnDecrease) {
  // Path 0-1-2-3-4-5 with weight 10, destination 5: dropping link 4-5 to 1
  // improves every other node's label (5 affected). A cap of 2 must abort
  // with dist byte-identical to the input; a cap of 5 must succeed.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 100.0, 1.0);
  std::vector<double> costs(g.num_arcs(), 10.0);
  std::vector<double> new_costs = costs;
  std::vector<ArcCostDelta> changes;
  for (ArcId a : g.link_arcs(4)) {
    changes.push_back({a, 10.0});
    new_costs[a] = 1.0;
  }
  DeltaSpfScratch scratch;
  std::vector<double> base, dist, full;
  shortest_distances_to(g, 5, costs, {}, base);
  dist = base;
  EXPECT_EQ(delta_spf_update_arcs(g, new_costs, {}, changes, dist, 2, scratch), -1);
  EXPECT_EQ(dist, base);
  dist = base;
  EXPECT_EQ(delta_spf_update_arcs(g, new_costs, {}, changes, dist, 5, scratch), 5);
  shortest_distances_to(g, 5, new_costs, {}, full);
  EXPECT_EQ(dist, full);
}

TEST(DeltaSpfUpdateTest, AbortThresholdRestoresDistOnIncrease) {
  // Same path, destination 5, raising link 4-5 to 100: every node upstream
  // of the change re-labels through the (only) path, so phase 1 floods and
  // a small cap must abort with dist untouched.
  Graph g(6);
  for (NodeId u = 0; u + 1 < 6; ++u) g.add_link(u, u + 1, 100.0, 1.0);
  std::vector<double> costs(g.num_arcs(), 10.0);
  std::vector<double> new_costs = costs;
  std::vector<ArcCostDelta> changes;
  for (ArcId a : g.link_arcs(4)) {
    changes.push_back({a, 10.0});
    new_costs[a] = 100.0;
  }
  DeltaSpfScratch scratch;
  std::vector<double> base, dist, full;
  shortest_distances_to(g, 5, costs, {}, base);
  dist = base;
  EXPECT_EQ(delta_spf_update_arcs(g, new_costs, {}, changes, dist, 2, scratch), -1);
  EXPECT_EQ(dist, base);
  dist = base;
  EXPECT_EQ(delta_spf_update_arcs(g, new_costs, {}, changes, dist, 5, scratch), 5);
  shortest_distances_to(g, 5, new_costs, {}, full);
  EXPECT_EQ(dist, full);
}

TEST(DeltaSpfUpdateTest, MixedMultiLinkChangesMatchFullRecompute) {
  // One increase and one decrease in the same change list exercise both
  // phases together on every destination.
  const Graph g = make_rand_topo({16, 4.0, 500.0, 31});
  const std::vector<double> costs = weight_costs(g, 20, 77);
  for (LinkId l1 = 0; l1 + 1 < g.num_links(); l1 += 4) {
    const LinkId l2 = l1 + 1;
    std::vector<double> new_costs = costs;
    std::vector<ArcCostDelta> changes;
    for (ArcId a : g.link_arcs(l1)) {
      changes.push_back({a, costs[a]});
      new_costs[a] = costs[a] + 40.0;
    }
    for (ArcId a : g.link_arcs(l2)) {
      changes.push_back({a, costs[a]});
      new_costs[a] = 1.0;
    }
    DeltaSpfScratch scratch;
    std::vector<double> base, delta, full;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      shortest_distances_to(g, t, costs, {}, base);
      delta = base;
      ASSERT_GE(delta_spf_update_arcs(g, new_costs, {}, changes, delta, g.num_nodes(),
                                      scratch),
                0);
      shortest_distances_to(g, t, new_costs, {}, full);
      ASSERT_EQ(delta, full) << "links " << l1 << "/" << l2 << " dest " << t;
    }
  }
}

}  // namespace
}  // namespace dtr
