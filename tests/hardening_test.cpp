/// Hardening-objective API: aggregation-mode parsing, the expected-downtime
/// arithmetic, per-link-shape detection (objective_from_link_probabilities
/// round-trips through as_per_link_probabilities and runs the classic
/// pipeline), the weighted/violation-abort sweep paths, catalog-criticality
/// determinism (1 vs 8 threads, bytes-equal), and the acceptance contract
/// that per-link and catalog-mode runs are bit-identical for any thread
/// count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "core/acceptable_store.h"
#include "core/criticality.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "experiments/campaign.h"
#include "routing/evaluator.h"
#include "scenarios/hardening.h"
#include "scenarios/scenario_eval.h"
#include "scenarios/scenario_set.h"
#include "scenarios/srlg.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dtr {
namespace {

using test::make_test_instance;
using test::random_weights;
using test::TestInstance;

void expect_bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }
}

// ------------------------------------------------------------ aggregation math

TEST(HardeningTest, AggregationModeRoundTrip) {
  for (const AggregationMode mode :
       {AggregationMode::kExpectedCost, AggregationMode::kWeightedPercentile,
        AggregationMode::kExpectedDowntime}) {
    const auto parsed = parse_aggregation_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(to_string(AggregationMode::kExpectedDowntime), "downtime");
  EXPECT_FALSE(parse_aggregation_mode("bogus").has_value());
  EXPECT_FALSE(parse_aggregation_mode("").has_value());
}

TEST(HardeningTest, ExpectedDowntimeHandComputed) {
  // Three scenarios, one-day period (1440 minutes):
  //   s0: 5 violations, 2 unavoidable, p = 0.01 -> 0.01 * 3 * 1440 = 43.2
  //   s1: 1 violation,  1 unavoidable, p = 0.50 -> 0 (nothing avoidable)
  //   s2: 0 violations, 0 unavoidable, p = 0.49 -> 0
  const std::vector<double> violations{5.0, 1.0, 0.0};
  const std::vector<double> unavoidable{2.0, 1.0, 0.0};
  const std::vector<double> weights{0.01, 0.5, 0.49};
  EXPECT_DOUBLE_EQ(expected_downtime_minutes(violations, unavoidable, weights, 1440.0),
                   43.2);
  // The max(0, .) clamp: an unavoidable count above the observed one (possible
  // only with inconsistent inputs) contributes zero, not negative downtime.
  const std::vector<double> one_v{1.0}, three{3.0}, unit{1.0};
  EXPECT_DOUBLE_EQ(expected_downtime_minutes(one_v, three, unit, 60.0), 0.0);
  // All-avoidable sanity: weights scale linearly with the period.
  const std::vector<double> two_v{2.0}, zero{0.0}, quarter{0.25};
  EXPECT_DOUBLE_EQ(expected_downtime_minutes(two_v, zero, quarter, 100.0), 50.0);

  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(expected_downtime_minutes(two, unavoidable, weights, 60.0),
               std::invalid_argument);
  EXPECT_THROW(expected_downtime_minutes(violations, two, weights, 60.0),
               std::invalid_argument);
  EXPECT_THROW(expected_downtime_minutes(violations, unavoidable, two, 60.0),
               std::invalid_argument);
}

TEST(HardeningTest, ValidateObjectiveRejectsBadInputs) {
  const Graph g = test::make_ring(5);

  HardeningObjective empty;
  EXPECT_THROW(validate_objective(empty, g), std::invalid_argument);

  HardeningObjective bad_link;
  bad_link.set.add(FailureScenario::link(99));
  EXPECT_THROW(validate_objective(bad_link, g), std::invalid_argument);

  HardeningObjective bad_percentile;
  bad_percentile.set.add(FailureScenario::link(0));
  bad_percentile.mode = AggregationMode::kWeightedPercentile;
  bad_percentile.percentile = 1.5;
  EXPECT_THROW(validate_objective(bad_percentile, g), std::invalid_argument);

  HardeningObjective bad_period;
  bad_period.set.add(FailureScenario::link(0));
  bad_period.mode = AggregationMode::kExpectedDowntime;
  bad_period.period_minutes = 0.0;
  EXPECT_THROW(validate_objective(bad_period, g), std::invalid_argument);

  HardeningObjective ok;
  ok.set.add(FailureScenario::compound({0, 2}, {1}));
  ok.mode = AggregationMode::kExpectedDowntime;
  EXPECT_NO_THROW(validate_objective(ok, g));
}

// ------------------------------------------------------------ per-link shape

TEST(HardeningTest, PerLinkShapeDetection) {
  const Graph g = test::make_ring(4);
  const std::vector<double> probs{0.1, 0.2, 0.3, 0.4};
  const HardeningObjective objective = objective_from_link_probabilities(g, probs);
  ASSERT_EQ(objective.set.size(), g.num_links());
  EXPECT_EQ(objective.mode, AggregationMode::kExpectedCost);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    EXPECT_EQ(objective.set.scenario(l), FailureScenario::link(l));
    EXPECT_EQ(objective.set.weight(l), probs[l]);
  }

  const auto roundtrip = as_per_link_probabilities(objective, g.num_links());
  ASSERT_TRUE(roundtrip.has_value());
  EXPECT_EQ(*roundtrip, probs);

  // Anything that is NOT exactly the per-link single-failure set in link
  // order routes to the catalog path (nullopt).
  HardeningObjective percentile = objective;
  percentile.mode = AggregationMode::kWeightedPercentile;
  EXPECT_FALSE(as_per_link_probabilities(percentile, g.num_links()).has_value());

  HardeningObjective shuffled;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const LinkId rev = static_cast<LinkId>(g.num_links() - 1 - l);
    shuffled.set.add(FailureScenario::link(rev), probs[rev]);
  }
  EXPECT_FALSE(as_per_link_probabilities(shuffled, g.num_links()).has_value());

  HardeningObjective compound = objective;
  compound.set.add(FailureScenario::link_pair(0, 1));
  EXPECT_FALSE(as_per_link_probabilities(compound, g.num_links()).has_value());

  EXPECT_FALSE(as_per_link_probabilities(objective, g.num_links() + 1).has_value());

  // Wrong-size probability vectors are refused up front.
  EXPECT_THROW(objective_from_link_probabilities(g, std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

// ------------------------------------------------------------ weighted sweep

TEST(HardeningTest, SweepAccumulatesViolationsAndAbortsOnThem) {
  const TestInstance inst = make_test_instance(10, 4.0, 47, 0.7);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w = random_weights(inst.graph, 30, 49);

  ScenarioSet set = enumerate_k_link_failures(inst.graph, {2, 10, 3});
  apply_rate_weights(set, derive_failure_rates(inst.graph));

  // Manual reduction in catalog order — the sweep must match bitwise.
  const std::vector<EvalResult> results = ev.evaluate_failures(w, set.scenarios());
  double viol = 0.0, phi = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    viol += set.weight(i) * results[i].sla_violations;
    phi += set.weight(i) * results[i].phi;
  }
  ASSERT_GT(viol, 0.0) << "fixture must produce violations for the abort test";

  const SweepResult full =
      ev.sweep(w, set.scenarios(), {.scenario_weights = set.weights()});
  EXPECT_EQ(full.violations, viol);
  EXPECT_EQ(full.phi, phi);
  EXPECT_FALSE(full.aborted);
  EXPECT_EQ(full.scenarios_evaluated, set.size());

  // abort_on_violations reinterprets the bound as (violations, phi): a
  // zero bound aborts immediately, a just-above-total bound never does.
  const CostPair tight{0.0, 0.0};
  const SweepResult aborted = ev.sweep(
      w, set.scenarios(),
      {.abort_bound = &tight, .scenario_weights = set.weights(),
       .abort_on_violations = true});
  EXPECT_TRUE(aborted.aborted);
  EXPECT_LT(aborted.scenarios_evaluated, set.size());

  const CostPair loose{viol + 1.0, phi + 1.0};
  const SweepResult complete = ev.sweep(
      w, set.scenarios(),
      {.abort_bound = &loose, .scenario_weights = set.weights(),
       .abort_on_violations = true});
  EXPECT_FALSE(complete.aborted);
  EXPECT_EQ(complete.violations, viol);

  // Parallel rounds accumulate in scenario order: bit-identical sums.
  ThreadPool eight(8);
  const SweepResult parallel = ev.sweep(
      w, set.scenarios(),
      {.scenario_weights = set.weights(), .pool = &eight, .chunk_size = 2});
  EXPECT_EQ(parallel.violations, full.violations);
  EXPECT_EQ(parallel.lambda, full.lambda);
  EXPECT_EQ(parallel.phi, full.phi);
}

TEST(HardeningTest, SummarizeScenariosReportsDowntime) {
  const TestInstance inst = make_test_instance(10, 4.0, 59, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  const WeightSetting w = random_weights(inst.graph, 30, 61);
  ScenarioSet set = enumerate_k_link_failures(inst.graph, {2, 9, 7});
  apply_rate_weights(set, derive_failure_rates(inst.graph));

  const double period = 1440.0;
  const ScenarioSummary summary = summarize_scenarios(ev, w, set, 0.95, nullptr, period);
  EXPECT_EQ(summary.period_minutes, period);

  const std::vector<EvalResult> results = ev.evaluate_failures(w, set.scenarios());
  std::vector<double> violations;
  for (const EvalResult& r : results)
    violations.push_back(static_cast<double>(r.sla_violations));
  const std::vector<double> unavoidable =
      unavoidable_violation_profile(ev, set.scenarios());
  EXPECT_EQ(summary.expected_downtime_min,
            expected_downtime_minutes(violations, unavoidable, set.weights(), period));

  EXPECT_THROW(summarize_scenarios(ev, w, set, 0.95, nullptr, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------ catalog criticality (1b')

TEST(HardeningTest, ScenarioCriticalityDeterministicAcrossThreads) {
  const TestInstance inst = make_test_instance(12, 4.0, 67, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);

  // Acceptable-routing pool: a handful of random settings with their normal
  // costs, like the Phase 1 store would hold.
  std::vector<AcceptableStore::Entry> storage;
  for (std::uint64_t s = 0; s < 6; ++s) {
    AcceptableStore::Entry entry;
    entry.setting = random_weights(inst.graph, 30, 70 + s);
    entry.cost = ev.evaluate(entry.setting).cost();
    storage.push_back(std::move(entry));
  }
  std::vector<const AcceptableStore::Entry*> entries;
  for (const auto& entry : storage) entries.push_back(&entry);

  // Compound catalog: sampled 2-link failures plus geographic SRLGs.
  ScenarioSet set;
  Rng catalog_rng(71);
  for (auto& s : sample_k_link_failures(inst.graph, 2, 5, catalog_rng))
    set.add(std::move(s));
  const ScenarioSet geo =
      srlg_scenario_set(inst.graph, synthesize_geo_srlgs(inst.graph, {3}));
  for (const FailureScenario& s : geo.scenarios()) set.add(s);
  ASSERT_GE(set.size(), 4u);

  const CriticalityParams params{};
  const long budget = 400;
  ThreadPool one(1);
  ThreadPool eight(8);

  Rng rng_seq(91);
  const ScenarioCriticality sequential = estimate_scenario_criticality(
      ev, set.scenarios(), entries, params, budget, rng_seq, &one);
  Rng rng_par(91);
  const ScenarioCriticality parallel = estimate_scenario_criticality(
      ev, set.scenarios(), entries, params, budget, rng_par, &eight);

  EXPECT_GT(sequential.samples, 0);
  EXPECT_EQ(sequential.samples, parallel.samples);
  EXPECT_EQ(sequential.converged, parallel.converged);
  expect_bytes_equal(sequential.estimates.rho_lambda, parallel.estimates.rho_lambda);
  expect_bytes_equal(sequential.estimates.rho_phi, parallel.estimates.rho_phi);
  expect_bytes_equal(sequential.estimates.mean_lambda, parallel.estimates.mean_lambda);
  expect_bytes_equal(sequential.estimates.mean_phi, parallel.estimates.mean_phi);
  expect_bytes_equal(sequential.estimates.tail_lambda, parallel.estimates.tail_lambda);
  expect_bytes_equal(sequential.estimates.tail_phi, parallel.estimates.tail_phi);

  // Both RNGs consumed identical draw sequences.
  EXPECT_EQ(rng_seq.uniform_index(1u << 30), rng_par.uniform_index(1u << 30));

  EXPECT_THROW(estimate_scenario_criticality(ev, {}, entries, params, budget, rng_seq),
               std::invalid_argument);
  EXPECT_THROW(estimate_scenario_criticality(ev, set.scenarios(), {}, params, budget,
                                             rng_seq),
               std::invalid_argument);
}

// ------------------------------------------------------------ optimizer shim

OptimizerConfig smoke_config(std::uint64_t seed) {
  OptimizerConfig c = default_optimizer_config(Effort::kSmoke, seed);
  c.wmax = 60;
  return c;
}

void expect_optimize_results_identical(const OptimizeResult& a, const OptimizeResult& b) {
  EXPECT_TRUE(a.regular == b.regular);
  EXPECT_TRUE(a.robust == b.robust);
  EXPECT_EQ(a.regular_cost.lambda, b.regular_cost.lambda);
  EXPECT_EQ(a.regular_cost.phi, b.regular_cost.phi);
  EXPECT_EQ(a.robust_normal_cost.lambda, b.robust_normal_cost.lambda);
  EXPECT_EQ(a.robust_normal_cost.phi, b.robust_normal_cost.phi);
  EXPECT_EQ(a.robust_kfail.lambda, b.robust_kfail.lambda);
  EXPECT_EQ(a.robust_kfail.phi, b.robust_kfail.phi);
  EXPECT_EQ(a.critical, b.critical);
  EXPECT_EQ(a.phase1a_samples, b.phase1a_samples);
  EXPECT_EQ(a.phase1b_samples, b.phase1b_samples);
  expect_bytes_equal(a.estimates.rho_lambda, b.estimates.rho_lambda);
  expect_bytes_equal(a.estimates.rho_phi, b.estimates.rho_phi);
}

TEST(HardeningTest, PerLinkObjectiveRunsClassicPipeline) {
  const TestInstance inst = make_test_instance(10, 4.0, 77, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  std::vector<double> probs(inst.graph.num_links());
  for (std::size_t l = 0; l < probs.size(); ++l)
    probs[l] = 0.001 * static_cast<double>(l + 1);

  OptimizerConfig config = smoke_config(77);
  config.objective = objective_from_link_probabilities(inst.graph, probs);

  // The per-link shape is detected and round-trips the weights exactly.
  const auto per_link =
      as_per_link_probabilities(*config.objective, inst.graph.num_links());
  ASSERT_TRUE(per_link.has_value());
  expect_bytes_equal(*per_link, probs);

  RobustOptimizer opt(ev, config);
  const OptimizeResult sequential = opt.optimize();
  // Classic per-link path: no catalog diagnostics.
  EXPECT_EQ(sequential.catalog_size, 0u);
  EXPECT_TRUE(sequential.critical_scenarios.empty());
  EXPECT_TRUE(std::isnan(sequential.robust_objective_value));

  // And it keeps the engine-wide determinism contract across thread shapes.
  OptimizerConfig parallel_config = config;
  parallel_config.num_threads = 8;
  RobustOptimizer parallel_opt(ev, parallel_config);
  expect_optimize_results_identical(sequential, parallel_opt.optimize());
}

// ------------------------------------------------------------ catalog mode

TEST(HardeningTest, CatalogDowntimeObjectiveEndToEnd) {
  const TestInstance inst = make_test_instance(12, 4.0, 83, 0.65);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);

  ScenarioSet set;
  Rng catalog_rng(85);
  for (auto& s : sample_k_link_failures(inst.graph, 2, 8, catalog_rng))
    set.add(std::move(s));
  apply_rate_weights(set, derive_failure_rates(inst.graph));

  HardeningObjective objective;
  objective.set = set;
  objective.mode = AggregationMode::kExpectedDowntime;
  objective.period_minutes = 1440.0;

  OptimizerConfig config = smoke_config(83);
  config.objective = objective;
  RobustOptimizer optimizer(ev, config);
  const OptimizeResult result = optimizer.optimize();

  EXPECT_EQ(result.catalog_size, set.size());
  ASSERT_FALSE(result.critical_scenarios.empty());
  EXPECT_TRUE(std::is_sorted(result.critical_scenarios.begin(),
                             result.critical_scenarios.end()));
  for (const std::size_t s : result.critical_scenarios) EXPECT_LT(s, set.size());
  EXPECT_EQ(result.scenario_estimates.rho_lambda.size(), set.size());
  EXPECT_GT(result.scenario_samples, 0u);
  // Ec is derived from the critical scenarios' failed links.
  EXPECT_FALSE(result.critical.empty());

  // The reported objective value is the robust setting's expected avoidable
  // downtime over the critical sub-catalog, and Phase 2 starts from the
  // regular setting — so it can only improve on the regular routing's value.
  std::vector<FailureScenario> critical;
  std::vector<double> weights;
  for (const std::size_t s : result.critical_scenarios) {
    critical.push_back(set.scenario(s));
    weights.push_back(set.weight(s));
  }
  const std::vector<double> unavoidable = unavoidable_violation_profile(ev, critical);
  const auto downtime_of = [&](const WeightSetting& w) {
    const std::vector<EvalResult> results = ev.evaluate_failures(w, critical);
    std::vector<double> violations;
    for (const EvalResult& r : results)
      violations.push_back(static_cast<double>(r.sla_violations));
    return expected_downtime_minutes(violations, unavoidable, weights,
                                     objective.period_minutes);
  };
  ASSERT_TRUE(std::isfinite(result.robust_objective_value));
  EXPECT_GE(result.robust_objective_value, 0.0);
  // The optimizer accumulates (V - U) * period with one global subtraction;
  // the per-scenario reduction differs only in float association order.
  const double recomputed = downtime_of(result.robust);
  EXPECT_NEAR(result.robust_objective_value, recomputed,
              1e-9 * std::max(1.0, recomputed));
  EXPECT_LE(result.robust_objective_value, downtime_of(result.regular) + 1e-9);
}

TEST(HardeningTest, CatalogRunBitIdenticalForAnyThreadCount) {
  const TestInstance inst = make_test_instance(11, 4.0, 89, 0.6);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);

  ScenarioSet set;
  Rng catalog_rng(93);
  for (auto& s : sample_k_link_failures(inst.graph, 2, 6, catalog_rng))
    set.add(std::move(s));
  const ScenarioSet geo =
      srlg_scenario_set(inst.graph, synthesize_geo_srlgs(inst.graph, {3}));
  for (const FailureScenario& s : geo.scenarios()) set.add(s);
  apply_rate_weights(set, derive_failure_rates(inst.graph));

  for (const AggregationMode mode :
       {AggregationMode::kExpectedCost, AggregationMode::kWeightedPercentile,
        AggregationMode::kExpectedDowntime}) {
    HardeningObjective objective;
    objective.set = set;
    objective.mode = mode;

    OptimizerConfig sequential = smoke_config(89);
    sequential.objective = objective;
    sequential.num_threads = 1;
    OptimizerConfig parallel = sequential;
    parallel.num_threads = 8;

    RobustOptimizer opt_seq(ev, sequential);
    const OptimizeResult a = opt_seq.optimize();
    RobustOptimizer opt_par(ev, parallel);
    const OptimizeResult b = opt_par.optimize();

    expect_optimize_results_identical(a, b);
    EXPECT_EQ(a.critical_scenarios, b.critical_scenarios);
    EXPECT_EQ(a.scenario_samples, b.scenario_samples);
    EXPECT_EQ(a.scenario_rank_converged, b.scenario_rank_converged);
    EXPECT_EQ(a.robust_objective_value, b.robust_objective_value)
        << "mode " << to_string(mode);
    expect_bytes_equal(a.scenario_estimates.rho_lambda, b.scenario_estimates.rho_lambda);
    expect_bytes_equal(a.scenario_estimates.rho_phi, b.scenario_estimates.rho_phi);
  }
}

TEST(HardeningTest, CatalogModeRejectsUnsupportedSelectors) {
  const TestInstance inst = make_test_instance(8, 4.0, 95);
  const Evaluator ev(inst.graph, inst.traffic, inst.params);
  ScenarioSet set;
  Rng rng(97);
  for (auto& s : sample_k_link_failures(inst.graph, 2, 4, rng)) set.add(std::move(s));

  HardeningObjective objective;
  objective.set = set;
  objective.mode = AggregationMode::kWeightedPercentile;

  for (const SelectorKind selector :
       {SelectorKind::kLoad, SelectorKind::kThresholdCrossing}) {
    OptimizerConfig config = smoke_config(95);
    config.objective = objective;
    config.selector = selector;
    RobustOptimizer optimizer(ev, config);
    EXPECT_THROW(optimizer.optimize(), std::invalid_argument);
  }
  // Random and full-search baselines DO generalize to catalogs.
  for (const SelectorKind selector : {SelectorKind::kRandom, SelectorKind::kFullSearch}) {
    OptimizerConfig config = smoke_config(95);
    config.objective = objective;
    config.selector = selector;
    RobustOptimizer optimizer(ev, config);
    const OptimizeResult result = optimizer.optimize();
    EXPECT_FALSE(result.critical_scenarios.empty());
  }
}

// ------------------------------------------------------------ campaign keys

TEST(HardeningTest, CampaignSpecParsesHardenKeys) {
  std::istringstream spec(R"(name = harden
effort = smoke
[cell]
id = downtime
objective = downtime
harden_set = geo_srlg
harden_geo_grid = 5
harden_rate_weights = 1
harden_period_min = 1440
[cell]
id = percentile
objective = percentile
harden_set = k_link
harden_k = 3
harden_budget = 12
harden_percentile = 0.9
[cell]
id = plain
)");
  namespace exp = experiments;
  const exp::Campaign campaign = exp::parse_campaign_spec(spec);
  ASSERT_EQ(campaign.cells.size(), 3u);

  const exp::HardenSpec& downtime = campaign.cells[0].harden;
  EXPECT_TRUE(downtime.enabled);
  EXPECT_EQ(downtime.mode, AggregationMode::kExpectedDowntime);
  EXPECT_EQ(downtime.catalog.kind, exp::ScenarioSpec::Kind::kGeoSrlg);
  EXPECT_EQ(downtime.catalog.geo_grid, 5);
  EXPECT_TRUE(downtime.catalog.rate_weights);
  EXPECT_EQ(downtime.period_minutes, 1440.0);

  const exp::HardenSpec& percentile = campaign.cells[1].harden;
  EXPECT_TRUE(percentile.enabled);
  EXPECT_EQ(percentile.mode, AggregationMode::kWeightedPercentile);
  EXPECT_EQ(percentile.catalog.kind, exp::ScenarioSpec::Kind::kKLink);
  EXPECT_EQ(percentile.catalog.k, 3);
  EXPECT_EQ(percentile.catalog.budget, 12u);
  EXPECT_EQ(percentile.catalog.percentile, 0.9);

  EXPECT_FALSE(campaign.cells[2].harden.enabled);
  // `objective=` alone means: all single-link failures (the baseline cell).
  EXPECT_EQ(downtime.seed_offset, 23u);
}

TEST(HardeningTest, CampaignSpecErrorsNameLineAndKey) {
  const auto parse_error = [](const std::string& body) -> std::string {
    std::istringstream in(body);
    try {
      experiments::parse_campaign_spec(in);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  };
  // Malformed value: the message carries the 1-based line number AND the key.
  const std::string bad_number = parse_error("[cell]\nid = a\nharden_k = 2x\n");
  EXPECT_NE(bad_number.find("line 3"), std::string::npos) << bad_number;
  EXPECT_NE(bad_number.find("harden_k"), std::string::npos) << bad_number;

  const std::string bad_mode = parse_error("[cell]\n\nobjective = sometimes\n");
  EXPECT_NE(bad_mode.find("line 3"), std::string::npos) << bad_mode;
  EXPECT_NE(bad_mode.find("objective"), std::string::npos) << bad_mode;

  const std::string unknown = parse_error("[cell]\nharden_sett = all_links\n");
  EXPECT_NE(unknown.find("line 2"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("harden_sett"), std::string::npos) << unknown;

  const std::string bad_set = parse_error("[cell]\nharden_set = everything\n");
  EXPECT_NE(bad_set.find("line 2"), std::string::npos) << bad_set;
  EXPECT_NE(bad_set.find("harden_set"), std::string::npos) << bad_set;

  const std::string bad_period = parse_error("[cell]\nharden_period_min = 0\n");
  EXPECT_NE(bad_period.find("line 2"), std::string::npos) << bad_period;
  EXPECT_NE(bad_period.find("harden_period_min"), std::string::npos) << bad_period;
}

TEST(HardeningTest, BuildHardeningObjectiveDefaultsToAllLinks) {
  const TestInstance inst = make_test_instance(10, 4.0, 99);
  namespace exp = experiments;
  exp::HardenSpec spec;
  spec.enabled = true;
  spec.mode = AggregationMode::kExpectedDowntime;
  spec.period_minutes = 1440.0;
  const HardeningObjective objective =
      exp::build_hardening_objective(spec, inst.graph, 5);
  EXPECT_EQ(objective.set.size(), inst.graph.num_links());
  EXPECT_EQ(objective.mode, AggregationMode::kExpectedDowntime);
  EXPECT_EQ(objective.period_minutes, 1440.0);
  EXPECT_NO_THROW(validate_objective(objective, inst.graph));
}

}  // namespace
}  // namespace dtr
